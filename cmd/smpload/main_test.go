package main

import (
	"testing"
)

// seq returns [1, 2, ..., n] — sorted, so the i-th smallest sample is
// simply i, making expected nearest-rank values readable.
func seq(n int) []float64 {
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = float64(i + 1)
	}
	return ms
}

// TestPercentilesNearestRank pins the nearest-rank (ceil) definition:
// the P-th percentile of N samples is the ceil(p*N)-th smallest. The
// old floor-truncation indexing reported, e.g., P99 of 10 samples as
// the 9th smallest instead of the max, biasing every small-N report
// low.
func TestPercentilesNearestRank(t *testing.T) {
	tests := []struct {
		n             int
		p50, p90, p99 float64
	}{
		// N=1: every percentile is the lone sample.
		{n: 1, p50: 1, p90: 1, p99: 1},
		// N=2: P50 = ceil(1.0) = 1st, P90 = ceil(1.8) = 2nd,
		// P99 = ceil(1.98) = 2nd. (Floor gave P90 = P99 = 1st.)
		{n: 2, p50: 1, p90: 2, p99: 2},
		// N=10: P99 = ceil(9.9) = 10th — the max, not the 9th.
		{n: 10, p50: 5, p90: 9, p99: 10},
		// N=100: P99 = ceil(99) = 99th smallest, exactly index 98.
		{n: 100, p50: 50, p90: 90, p99: 99},
	}
	for _, tt := range tests {
		got := percentiles(seq(tt.n))
		if got.P50 != tt.p50 || got.P90 != tt.p90 || got.P99 != tt.p99 {
			t.Errorf("N=%d: P50/P90/P99 = %v/%v/%v, want %v/%v/%v",
				tt.n, got.P50, got.P90, got.P99, tt.p50, tt.p90, tt.p99)
		}
		if want := float64(tt.n); got.Max != want {
			t.Errorf("N=%d: Max = %v, want %v", tt.n, got.Max, want)
		}
	}
}

// TestPercentilesEmpty keeps the zero-sample case a zero value rather
// than a panic.
func TestPercentilesEmpty(t *testing.T) {
	if got := percentiles(nil); got != (Percentiles{}) {
		t.Errorf("percentiles(nil) = %+v, want zero", got)
	}
}

// TestPercentilesMean covers the one non-rank statistic.
func TestPercentilesMean(t *testing.T) {
	if got := percentiles(seq(4)).Mean; got != 2.5 {
		t.Errorf("mean of 1..4 = %v, want 2.5", got)
	}
}
