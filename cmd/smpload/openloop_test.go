package main

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"busaware/internal/scenario"
	"busaware/internal/units"
)

func pattern(t *testing.T, s string) *scenario.Pattern {
	t.Helper()
	p, err := scenario.ParsePattern(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanArrivalsDeterministic pins the rerun contract behind the CI
// schedule-digest assert: the same pattern, rate, mix size and spread
// must plan the identical schedule, bit for bit.
func TestPlanArrivalsDeterministic(t *testing.T) {
	pat := pattern(t, "flashcrowd")
	a, err := planArrivals(pat, 1, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := planArrivals(pat, 1, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs planned different schedules")
	}
	if scheduleDigest(a) != scheduleDigest(b) {
		t.Fatal("identical plans digest differently")
	}
	// A different rate must change the digest (more arrivals).
	c, err := planArrivals(pat, 2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if scheduleDigest(a) == scheduleDigest(c) {
		t.Fatal("rate change did not change the schedule digest")
	}
}

// TestPlanArrivalsSpikeVariants pins the phase-aware cache-busting
// scheme: variant 0 everywhere except inside spike segments, where
// arrivals rotate over 1..spread.
func TestPlanArrivalsSpikeVariants(t *testing.T) {
	pat := pattern(t, "step:2s@5; spike:2s@5..40; step:2s@5")
	plan, err := planArrivals(pat, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	phases := pat.Phases()
	var spike, steady int
	seen := map[int64]bool{}
	for _, a := range plan {
		if phases[a.phase].Kind == scenario.SegSpike {
			spike++
			if a.variant < 1 || a.variant > 4 {
				t.Fatalf("spike arrival variant = %d, want 1..4", a.variant)
			}
			seen[a.variant] = true
		} else {
			steady++
			if a.variant != 0 {
				t.Fatalf("steady arrival variant = %d, want 0", a.variant)
			}
		}
	}
	if spike == 0 || steady == 0 {
		t.Fatalf("degenerate plan: %d spike / %d steady arrivals", spike, steady)
	}
	// The spike averages ~22.5 rps for 2s — easily enough arrivals to
	// cycle all four variants.
	if len(seen) != 4 {
		t.Errorf("spike used %d distinct variants, want 4", len(seen))
	}
	// Entries round-robin over the whole plan.
	if plan[0].entry != 0 || plan[1].entry != 1 || plan[2].entry != 0 {
		t.Errorf("entries not round-robin: %d %d %d", plan[0].entry, plan[1].entry, plan[2].entry)
	}
}

func TestPlanArrivalsEmpty(t *testing.T) {
	if _, err := planArrivals(pattern(t, "step:1s@0"), 1, 1, 1); err == nil {
		t.Fatal("zero-arrival pattern accepted")
	}
}

// TestBuildScenarioSummaryPhases drives the per-phase bucketing with a
// synthetic result set: phase 0 all cache-hit 200s, phase 1 split
// 200/429, one saturated window published mid-spike.
func TestBuildScenarioSummaryPhases(t *testing.T) {
	pat := pattern(t, "step:2s@1; spike:2s@1..10; step:2s@1")
	start := time.Unix(1000, 0)
	plan := []arrival{
		{at: 0, phase: 0}, {at: units.Second, phase: 0},
		{at: 2*units.Second + 1, phase: 1}, {at: 3 * units.Second, phase: 1},
	}
	mk := func(phase int, code int, at units.Time, lat time.Duration, hit bool) result {
		issued := start.Add(time.Duration(at) * time.Microsecond)
		return result{code: code, latency: lat, done: issued.Add(lat), phase: phase, hit: hit}
	}
	results := []result{
		mk(0, http.StatusOK, 0, 5*time.Millisecond, true),
		mk(0, http.StatusOK, units.Second, 7*time.Millisecond, true),
		mk(1, http.StatusOK, 2*units.Second+1, 40*time.Millisecond, false),
		mk(1, http.StatusTooManyRequests, 3*units.Second, time.Millisecond, false),
	}
	events := []timelineEvent{
		{WallMs: start.UnixMilli() + 3000}, // unsaturated: ignored
		{WallMs: start.UnixMilli() + 3000, Window: struct {
			Quanta    int64   `json:"quanta"`
			UtilSum   float64 `json:"util_sum"`
			Saturated int64   `json:"saturated"`
		}{Saturated: 2}},
	}
	ss := buildScenarioSummary(pat, 1, plan, results, start, events)
	if len(ss.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(ss.Phases))
	}
	p0, p1, p2 := ss.Phases[0], ss.Phases[1], ss.Phases[2]
	if p0.Arrivals != 2 || p0.OK != 2 || p0.CacheHits != 2 || p0.Shed != 0 {
		t.Errorf("phase 0 = %+v, want 2 cache-hit OKs", p0)
	}
	if p1.Arrivals != 2 || p1.OK != 1 || p1.Shed != 1 {
		t.Errorf("phase 1 = %+v, want 1 OK + 1 shed", p1)
	}
	if p2.Arrivals != 0 {
		t.Errorf("phase 2 arrivals = %d, want 0", p2.Arrivals)
	}
	if p1.SaturatedWindows != 1 || p0.SaturatedWindows != 0 || p2.SaturatedWindows != 0 {
		t.Errorf("saturated windows = %d/%d/%d, want 0/1/0",
			p0.SaturatedWindows, p1.SaturatedWindows, p2.SaturatedWindows)
	}
	if p1.LatencyMs.P50 != 40 {
		t.Errorf("phase 1 p50 = %v, want 40ms", p1.LatencyMs.P50)
	}
	if ss.PlannedArrivals != 4 || ss.ScheduleDigest == "" {
		t.Errorf("summary header = %+v", ss)
	}
	// 4 arrivals over a 6s pattern.
	if ss.TargetRPS < 0.66 || ss.TargetRPS > 0.67 {
		t.Errorf("target rps = %v, want ~0.667", ss.TargetRPS)
	}
	// Last issuance at 3s into the run → achieved ≈ 4/3 rps.
	if ss.AchievedRPS < 1.3 || ss.AchievedRPS > 1.4 {
		t.Errorf("achieved rps = %v, want ~1.33", ss.AchievedRPS)
	}
}
