package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: busaware
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimQuantum-4      	     100	   2652011 ns/op	   36445 B/op	     154 allocs/op
BenchmarkBusAllocate-4     	20000000	        71.16 ns/op	       0 B/op	       0 allocs/op
BenchmarkCalibrationSTREAM 	       1	   1234567 ns/op	        29.50 trans/us	      1797 MB/s
PASS
ok  	busaware	10.1s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if rs[0].Name != "BenchmarkBusAllocate" || rs[1].Name != "BenchmarkCalibrationSTREAM" || rs[2].Name != "BenchmarkSimQuantum" {
		t.Fatalf("wrong order/names: %v %v %v", rs[0].Name, rs[1].Name, rs[2].Name)
	}
	sq := rs[2]
	if sq.Iterations != 100 || sq.NsPerOp != 2652011 || sq.BytesPerOp != 36445 || sq.AllocsOp != 154 {
		t.Errorf("SimQuantum parsed wrong: %+v", sq)
	}
	cal := rs[1]
	if cal.Metrics["trans/us"] != 29.5 || cal.Metrics["MB/s"] != 1797 {
		t.Errorf("custom metrics lost: %+v", cal.Metrics)
	}
}

// bench builds a Result the way Parse would: Metrics carries every
// unit, with the well-known ones mirrored into the named fields.
func bench(name string, ns, bytes, allocs float64) Result {
	return Result{
		Name: name, NsPerOp: ns, BytesPerOp: bytes, AllocsOp: allocs,
		Metrics: map[string]float64{"ns/op": ns, "B/op": bytes, "allocs/op": allocs},
	}
}

func TestGateAllocs(t *testing.T) {
	spec := GateSpec{Name: "BenchmarkSimQuantum", Metric: "allocs/op", Tolerance: 0.20}
	base := []Result{bench("BenchmarkSimQuantum", 1000, 64, 100)}
	ok := []Result{bench("BenchmarkSimQuantum", 1000, 64, 119)}
	if err := Gate(ok, base, spec); err != nil {
		t.Errorf("within tolerance rejected: %v", err)
	}
	bad := []Result{bench("BenchmarkSimQuantum", 1000, 64, 121)}
	if err := Gate(bad, base, spec); err == nil {
		t.Error("regression past tolerance accepted")
	}
	spec.Name = "BenchmarkMissing"
	if err := Gate(ok, base, spec); err == nil {
		t.Error("missing gate benchmark accepted")
	}
}

func TestGateNsPerOp(t *testing.T) {
	spec := GateSpec{Name: "BenchmarkSimQuantum", Metric: "ns/op", Tolerance: 0.25}
	base := []Result{bench("BenchmarkSimQuantum", 2000000, 0, 158)}
	ok := []Result{bench("BenchmarkSimQuantum", 2499999, 0, 158)}
	if err := Gate(ok, base, spec); err != nil {
		t.Errorf("24.99%% slower rejected: %v", err)
	}
	bad := []Result{bench("BenchmarkSimQuantum", 2500001, 0, 158)}
	if err := Gate(bad, base, spec); err == nil {
		t.Error(">25% ns/op regression accepted")
	}
}

func TestGateZeroTolerancePinsZeroAllocs(t *testing.T) {
	spec := GateSpec{Name: "BenchmarkTimelineRecord", Metric: "allocs/op", Tolerance: 0}
	base := []Result{bench("BenchmarkTimelineRecord", 22, 0, 0)}
	if err := Gate([]Result{bench("BenchmarkTimelineRecord", 30, 0, 0)}, base, spec); err != nil {
		t.Errorf("still-zero allocs rejected: %v", err)
	}
	if err := Gate([]Result{bench("BenchmarkTimelineRecord", 22, 16, 1)}, base, spec); err == nil {
		t.Error("single alloc on a pinned-zero benchmark accepted")
	}
}

func TestGateMissingMetric(t *testing.T) {
	spec := GateSpec{Name: "BenchmarkSimQuantum", Metric: "MB/s", Tolerance: 0.1}
	rs := []Result{bench("BenchmarkSimQuantum", 1000, 0, 0)}
	if err := Gate(rs, rs, spec); err == nil {
		t.Error("gate on absent metric accepted")
	}
}

func TestParseGateSpec(t *testing.T) {
	cases := []struct {
		in   string
		want GateSpec
	}{
		{"BenchmarkSimQuantum", GateSpec{"BenchmarkSimQuantum", "allocs/op", 0.20}},
		{"BenchmarkSimQuantum=ns/op", GateSpec{"BenchmarkSimQuantum", "ns/op", 0.20}},
		{"BenchmarkSimQuantum=ns/op:0.25", GateSpec{"BenchmarkSimQuantum", "ns/op", 0.25}},
		{"BenchmarkTimelineRecord=allocs/op:0", GateSpec{"BenchmarkTimelineRecord", "allocs/op", 0}},
	}
	for _, c := range cases {
		got, err := ParseGateSpec(c.in, 0.20)
		if err != nil {
			t.Errorf("ParseGateSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGateSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "=ns/op", "Bench=", "Bench=ns/op:x", "Bench=ns/op:-1"} {
		if _, err := ParseGateSpec(bad, 0.20); err == nil {
			t.Errorf("ParseGateSpec(%q) accepted", bad)
		}
	}
}
