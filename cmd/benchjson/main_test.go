package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: busaware
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimQuantum-4      	     100	   2652011 ns/op	   36445 B/op	     154 allocs/op
BenchmarkBusAllocate-4     	20000000	        71.16 ns/op	       0 B/op	       0 allocs/op
BenchmarkCalibrationSTREAM 	       1	   1234567 ns/op	        29.50 trans/us	      1797 MB/s
PASS
ok  	busaware	10.1s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if rs[0].Name != "BenchmarkBusAllocate" || rs[1].Name != "BenchmarkCalibrationSTREAM" || rs[2].Name != "BenchmarkSimQuantum" {
		t.Fatalf("wrong order/names: %v %v %v", rs[0].Name, rs[1].Name, rs[2].Name)
	}
	sq := rs[2]
	if sq.Iterations != 100 || sq.NsPerOp != 2652011 || sq.BytesPerOp != 36445 || sq.AllocsOp != 154 {
		t.Errorf("SimQuantum parsed wrong: %+v", sq)
	}
	cal := rs[1]
	if cal.Metrics["trans/us"] != 29.5 || cal.Metrics["MB/s"] != 1797 {
		t.Errorf("custom metrics lost: %+v", cal.Metrics)
	}
}

func TestGate(t *testing.T) {
	base := []Result{{Name: "BenchmarkSimQuantum", AllocsOp: 100}}
	ok := []Result{{Name: "BenchmarkSimQuantum", AllocsOp: 119}}
	if err := Gate(ok, base, "BenchmarkSimQuantum", 0.20); err != nil {
		t.Errorf("within tolerance rejected: %v", err)
	}
	bad := []Result{{Name: "BenchmarkSimQuantum", AllocsOp: 121}}
	if err := Gate(bad, base, "BenchmarkSimQuantum", 0.20); err == nil {
		t.Error("regression past tolerance accepted")
	}
	if err := Gate(ok, base, "BenchmarkMissing", 0.20); err == nil {
		t.Error("missing gate benchmark accepted")
	}
}
