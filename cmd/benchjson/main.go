// Command benchjson converts `go test -bench` output into a stable
// JSON artifact and optionally gates regressions against a checked-in
// baseline.
//
// It reads benchmark output on stdin, writes JSON to -o, and — when
// -baseline is given — fails (exit 1) if any gated metric regressed
// past its tolerance relative to the baseline. -gate is repeatable and
// takes "Name", "Name=metric" or "Name=metric:tolerance"; a bare name
// gates allocs/op at -tolerance. Allocations are the primary gate
// because they are bit-stable across CI hardware; ns/op gates are
// supported for coarse cliffs (a 25% tolerance catches an accidental
// O(n) in the hot loop while riding out scheduler noise), and a
// tolerance of 0 pins a metric exactly — the discipline used for
// allocation-free hot paths.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_sim.json \
//	    -baseline BENCH_baseline.json \
//	    -gate BenchmarkSimQuantum \
//	    -gate 'BenchmarkSimQuantum=ns/op:0.25' \
//	    -gate 'BenchmarkTimelineRecord=allocs/op:0'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every reported unit, including custom
	// b.ReportMetric units like "trans/us".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches "BenchmarkName-8   <iters>   <value> <unit> ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse extracts benchmark results from go test -bench output. Lines
// that are not benchmark results are ignored. Results are returned
// sorted by name so the JSON artifact is diff-stable.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value in %q: %v", sc.Text(), err)
			}
			unit := fields[i+1]
			res.Metrics[unit] = val
			switch unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsOp = val
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// GateSpec names one metric of one benchmark and the fractional
// regression it is allowed relative to the baseline. Tolerance 0 pins
// the metric exactly (any increase fails) — with a baseline of 0 that
// enforces e.g. a permanently allocation-free hot path.
type GateSpec struct {
	Name      string
	Metric    string
	Tolerance float64
}

func (g GateSpec) String() string {
	return fmt.Sprintf("%s=%s:%g", g.Name, g.Metric, g.Tolerance)
}

// ParseGateSpec parses "Name", "Name=metric" or "Name=metric:tol".
// A bare name or missing tolerance falls back to allocs/op at
// defaultTol, which keeps the original single-flag CLI working.
func ParseGateSpec(s string, defaultTol float64) (GateSpec, error) {
	g := GateSpec{Metric: "allocs/op", Tolerance: defaultTol}
	var hasMetric bool
	g.Name, s, hasMetric = strings.Cut(strings.TrimSpace(s), "=")
	if g.Name == "" {
		return g, fmt.Errorf("benchjson: empty benchmark name in gate spec")
	}
	if !hasMetric {
		return g, nil
	}
	metric, tol, hasTol := strings.Cut(s, ":")
	if metric == "" {
		return g, fmt.Errorf("benchjson: empty metric in gate spec %q", s)
	}
	g.Metric = metric
	if hasTol {
		v, err := strconv.ParseFloat(tol, 64)
		if err != nil || v < 0 {
			return g, fmt.Errorf("benchjson: bad tolerance %q in gate spec", tol)
		}
		g.Tolerance = v
	}
	return g, nil
}

// Gate checks one metric of one benchmark between current and baseline
// and returns an error if it regressed past the tolerance (e.g. 0.25 =
// fail if more than 25% above baseline). The metric is looked up in the
// full Metrics map, so custom b.ReportMetric units gate too.
func Gate(current, baseline []Result, spec GateSpec) error {
	find := func(rs []Result, which string) (float64, error) {
		for _, r := range rs {
			if r.Name != spec.Name {
				continue
			}
			if v, ok := r.Metrics[spec.Metric]; ok {
				return v, nil
			}
			return 0, fmt.Errorf("benchjson: %s has no %s metric in %s", spec.Name, spec.Metric, which)
		}
		return 0, fmt.Errorf("benchjson: gated benchmark %s missing from %s", spec.Name, which)
	}
	cur, err := find(current, "current run")
	if err != nil {
		return err
	}
	base, err := find(baseline, "baseline")
	if err != nil {
		return err
	}
	limit := base * (1 + spec.Tolerance)
	if cur > limit {
		return fmt.Errorf("benchjson: %s %s regressed: %v > %v (baseline %v +%.0f%%)",
			spec.Name, spec.Metric, cur, limit, base, spec.Tolerance*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s %s %v within %v (baseline %v +%.0f%%)\n",
		spec.Name, spec.Metric, cur, limit, base, spec.Tolerance*100)
	return nil
}

// gateList collects repeated -gate flags.
type gateList []string

func (g *gateList) String() string     { return strings.Join(*g, ",") }
func (g *gateList) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON path ('-' for stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	var gates gateList
	flag.Var(&gates, "gate", "gate spec 'Name', 'Name=metric' or 'Name=metric:tolerance' (repeatable; default gates BenchmarkSimQuantum allocs/op and ns/op, BenchmarkTimelineRecord allocs/op)")
	tolerance := flag.Float64("tolerance", 0.20, "default fractional regression for gate specs without an explicit tolerance")
	flag.Parse()

	results, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}

	buf, err := json.MarshalIndent(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base struct {
			Benchmarks []Result `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("benchjson: bad baseline %s: %v", *baseline, err))
		}
		if len(gates) == 0 {
			// The repo's standing regression contract: allocations on
			// the per-quantum hot paths are bit-stable and gated tight
			// (SimQuantum within -tolerance, TimelineRecord pinned at
			// its baseline of zero); SimQuantum ns/op gets a coarse 25%
			// cliff gate.
			gates = gateList{
				"BenchmarkSimQuantum",
				"BenchmarkSimQuantum=ns/op:0.25",
				"BenchmarkTimelineRecord=allocs/op:0",
			}
		}
		failed := false
		for _, raw := range gates {
			spec, err := ParseGateSpec(raw, *tolerance)
			if err != nil {
				fatal(err)
			}
			if err := Gate(results, base.Benchmarks, spec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
