// Command benchjson converts `go test -bench` output into a stable
// JSON artifact and optionally gates allocation regressions against a
// checked-in baseline.
//
// It reads benchmark output on stdin, writes JSON to -o, and — when
// -baseline is given — fails (exit 1) if the gated benchmark's
// allocs/op regressed by more than -tolerance relative to the
// baseline. Allocations are gated rather than timings because they
// are bit-stable across CI hardware while ns/op is not.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_sim.json \
//	    -baseline BENCH_baseline.json -gate BenchmarkSimQuantum
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every reported unit, including custom
	// b.ReportMetric units like "trans/us".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches "BenchmarkName-8   <iters>   <value> <unit> ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse extracts benchmark results from go test -bench output. Lines
// that are not benchmark results are ignored. Results are returned
// sorted by name so the JSON artifact is diff-stable.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value in %q: %v", sc.Text(), err)
			}
			unit := fields[i+1]
			res.Metrics[unit] = val
			switch unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsOp = val
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Gate compares the named benchmark's allocs/op between current and
// baseline and returns an error if it regressed past the tolerance
// (e.g. 0.20 = fail if more than 20% above baseline).
func Gate(current, baseline []Result, name string, tolerance float64) error {
	find := func(rs []Result) (Result, bool) {
		for _, r := range rs {
			if r.Name == name {
				return r, true
			}
		}
		return Result{}, false
	}
	cur, ok := find(current)
	if !ok {
		return fmt.Errorf("benchjson: gated benchmark %s missing from current run", name)
	}
	base, ok := find(baseline)
	if !ok {
		return fmt.Errorf("benchjson: gated benchmark %s missing from baseline", name)
	}
	limit := base.AllocsOp * (1 + tolerance)
	if cur.AllocsOp > limit {
		return fmt.Errorf("benchjson: %s allocs/op regressed: %v > %v (baseline %v +%.0f%%)",
			name, cur.AllocsOp, limit, base.AllocsOp, tolerance*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s allocs/op %v within %v (baseline %v +%.0f%%)\n",
		name, cur.AllocsOp, limit, base.AllocsOp, tolerance*100)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON path ('-' for stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
	gateName := flag.String("gate", "BenchmarkSimQuantum", "benchmark whose allocs/op is gated")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional allocs/op regression")
	flag.Parse()

	results, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}

	buf, err := json.MarshalIndent(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base struct {
			Benchmarks []Result `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("benchjson: bad baseline %s: %v", *baseline, err))
		}
		if err := Gate(results, base.Benchmarks, *gateName, *tolerance); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
