package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"busaware"
	"busaware/internal/report"
)

// timelineSpec is the workload the telemetry figure runs: the paper's
// saturated shape (a bandwidth-hungry application pair against BBMA
// antagonists), which is where admission decisions and bus saturation
// actually show up in the windows.
const timelineSpec = "CG x2, BBMA x4"

// timelinePolicies contrasts the baseline that ignores the bus with
// the paper's headline policy.
var timelinePolicies = []string{busaware.PolicyLinux, busaware.PolicyQuantaWindow}

// policyWindows is one policy's telemetry: the retained windows plus
// the run summary.
type policyWindows struct {
	Policy  string
	Windows []busaware.TimelineWindow
	Summary busaware.TimelineWindow
}

// timelineFigure runs the saturated mix under each policy with a
// per-quantum collector attached, renders the windows as a table, and
// optionally writes them to outPath (CSV or NDJSON by extension).
func timelineFigure(emit func(*report.Table), outPath string) error {
	var recs []policyWindows
	for _, policy := range timelinePolicies {
		apps, err := busaware.ParseApps(timelineSpec)
		if err != nil {
			return err
		}
		m := busaware.PaperMachine()
		s, err := busaware.NewScheduler(policy, m, 1)
		if err != nil {
			return err
		}
		col, err := busaware.NewTimelineCollector(busaware.TimelineConfig{QuantaPerWindow: 32})
		if err != nil {
			return err
		}
		if _, err := busaware.RunWithTimeline(m, s, apps, col); err != nil {
			return err
		}
		recs = append(recs, policyWindows{Policy: policy, Windows: col.Windows(), Summary: col.Summary()})
	}

	t := report.NewTable(
		fmt.Sprintf("Per-window telemetry: %s (32-quantum windows)", timelineSpec),
		"Policy", "Win", "Start", "Quanta", "UtilMean", "UtilMax", "StretchMax",
		"RunnableMean", "Deferred%", "Sat", "Idle", "Faults")
	for _, rec := range recs {
		for _, w := range rec.Windows {
			t.AddRowf(rec.Policy, fmt.Sprint(w.Seq),
				busaware.Time(w.StartUsec).String(), fmt.Sprint(w.Quanta),
				w.UtilMean(), w.UtilMax, w.StretchMax,
				w.RunnableMean(), 100*w.DeferredFrac(),
				fmt.Sprint(w.Saturated), fmt.Sprint(w.Idle), fmt.Sprint(w.Faults))
		}
		s := rec.Summary
		t.AddRowf(rec.Policy, "TOTAL",
			busaware.Time(s.StartUsec).String(), fmt.Sprint(s.Quanta),
			s.UtilMean(), s.UtilMax, s.StretchMax,
			s.RunnableMean(), 100*s.DeferredFrac(),
			fmt.Sprint(s.Saturated), fmt.Sprint(s.Idle), fmt.Sprint(s.Faults))
	}
	emit(t)

	if outPath == "" {
		return nil
	}
	return writeTimelineArtifact(outPath, recs)
}

// writeTimelineArtifact persists the windows machine-readably: CSV for
// a .csv path, NDJSON (one {"policy","window"} object per line, the
// same window schema the /v1/timeline stream carries) otherwise.
func writeTimelineArtifact(path string, recs []policyWindows) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".csv") {
		err = writeTimelineCSV(w, recs)
	} else {
		err = writeTimelineNDJSON(w, recs)
	}
	if err == nil {
		err = w.Flush()
	}
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

func writeTimelineCSV(w *bufio.Writer, recs []policyWindows) error {
	if _, err := fmt.Fprintln(w, "policy,seq,start_usec,end_usec,quanta,util_mean,util_max,served_mean,stretch_max,placed,runnable,admitted,deferred,saturated,idle,faults"); err != nil {
		return err
	}
	for _, rec := range recs {
		for _, win := range rec.Windows {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d,%d\n",
				rec.Policy, win.Seq, win.StartUsec, win.EndUsec, win.Quanta,
				win.UtilMean(), win.UtilMax, win.ServedMean(), win.StretchMax,
				win.Placed, win.Runnable, win.Admitted, win.Deferred,
				win.Saturated, win.Idle, win.Faults); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTimelineNDJSON(w *bufio.Writer, recs []policyWindows) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		for _, win := range rec.Windows {
			line := struct {
				Policy string                  `json:"policy"`
				Window busaware.TimelineWindow `json:"window"`
			}{rec.Policy, win}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}
