// Command figures regenerates every table and figure of the paper's
// evaluation on the simulated machine and renders them as aligned
// text tables (optionally CSV). Independent simulation cells fan out
// across a bounded worker pool (-workers); the output is identical at
// any worker count.
//
// Usage:
//
//	figures [-fig all|cal|hit|1a|1b|2a|2b|2c|ablw|ablq|ovh|zoo|sampling|robust|degr|servers|smt|timeline|churn] [-engine quantum|event|shadow] [-csv] [-workers N] [-runstats] [-timelineout f] [-cpuprofile f] [-memprofile f]
//
// -engine selects the simulation core: quantum is the stepped
// reference loop, event leaps across constant stretches, and shadow
// runs both cores on every cell and fails on any divergence (the
// correctness harness for the event engine). The figures themselves
// are identical under all three.
//
// -fig timeline renders per-window telemetry (bus utilization,
// admission decisions, saturation) for the saturated mix under the
// Linux baseline and the Quanta Window policy; -timelineout
// additionally writes the windows as a machine-readable artifact (CSV
// when the path ends in .csv, NDJSON otherwise).
//
// -fig churn runs the flash-crowd churn study: scenario jobs arrive
// and depart mid-run while a resident BT pair completes, and the table
// reports how well each policy protected the base apps' turnaround.
// Like timeline, churn is an extension artifact outside -fig all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"busaware"
	"busaware/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate: all, cal, hit, 1a, 1b, 2a, 2b, 2c, ablw, ablq, ovh, zoo, sampling, robust, degr, servers, smt, timeline, churn (timeline and churn are not part of all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	app := flag.String("app", "BT", "application for the scheduler-zoo comparison")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	engine := flag.String("engine", "", "simulation engine: quantum (stepped reference, default), event (leaps constant stretches), shadow (runs both, fails on divergence)")
	runstats := flag.Bool("runstats", false, "print run-level metrics (per-batch wall time, simulated quanta, bus utilization, worker occupancy) after the figures")
	timelineOut := flag.String("timelineout", "", "with -fig timeline: write per-window telemetry to this file (.csv = CSV, else NDJSON)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole regeneration to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after a final GC) to this file on exit")
	flag.Parse()

	profiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	err = run(*fig, *engine, *csv, *app, *workers, *runstats, *timelineOut)
	// Finish the profiles before deciding the exit: a clean run flushes
	// complete files; a failed run removes the partial ones instead of
	// leaving truncated profiles that pprof would half-read.
	if perr := profiles.finish(err != nil); err == nil {
		err = perr
	}
	if err != nil {
		fatal(err)
	}
}

func run(fig, engine string, csv bool, app string, workers int, runstats bool, timelineOut string) error {
	eng, err := busaware.ParseEngine(engine)
	if err != nil {
		return err
	}
	opt := busaware.ExperimentOptions{Workers: workers, Engine: eng}
	var metrics *busaware.RunMetrics
	if runstats {
		metrics = busaware.NewRunMetrics()
		opt.Metrics = metrics
	}
	emit := func(t *report.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	var figTimes []figTime
	defer func() {
		if metrics != nil {
			emit(figWallTable(eng, figTimes))
			emit(runstatsTable(metrics))
		}
	}()

	figs := map[string]func() error{
		"cal": func() error { return calibration(opt, emit) },
		"hit": func() error { return hitRates(emit) },
		"1a":  func() error { return figure1(opt, emit, true) },
		"1b":  func() error { return figure1(opt, emit, false) },
		"2a": func() error {
			rows, err := busaware.Figure2A(opt)
			return figure2("Figure 2A: 2 apps + 4 BBMA (improvement % over Linux)", rows, err, emit)
		},
		"2b": func() error {
			rows, err := busaware.Figure2B(opt)
			return figure2("Figure 2B: 2 apps + 4 nBBMA (improvement % over Linux)", rows, err, emit)
		},
		"2c": func() error {
			rows, err := busaware.Figure2C(opt)
			return figure2("Figure 2C: 2 apps + 2 BBMA + 2 nBBMA (improvement % over Linux)", rows, err, emit)
		},
		"ablw":     func() error { return windowAblation(opt, emit) },
		"ablq":     func() error { return quantumAblation(opt, emit) },
		"ovh":      func() error { return overhead(opt, emit) },
		"zoo":      func() error { return zoo(opt, app, emit) },
		"sampling": func() error { return sampling(opt, emit) },
		"robust":   func() error { return robustness(opt, emit) },
		"degr":     func() error { return degradation(opt, emit) },
		"servers":  func() error { return servers(opt, emit) },
		"smt":      func() error { return smt(opt, emit) },
		"timeline": func() error { return timelineFigure(emit, timelineOut) },
		"churn":    func() error { return churnFigure(opt, emit) },
	}
	// "timeline" and "churn" are deliberately outside the all-order:
	// they are extension artifacts, not paper figures, and keeping them
	// out preserves -fig all output byte-for-byte.
	order := []string{"cal", "hit", "1a", "1b", "2a", "2b", "2c", "ablw", "ablq", "ovh", "zoo", "sampling", "robust", "degr", "servers", "smt"}

	// timed wraps one figure so -runstats can report per-figure wall
	// clock alongside the batch metrics.
	timed := func(name string, f func() error) error {
		t0 := time.Now()
		err := f()
		figTimes = append(figTimes, figTime{name: name, wall: time.Since(t0)})
		return err
	}

	which := strings.ToLower(fig)
	if which == "all" {
		for _, k := range order {
			if err := timed(k, figs[k]); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := figs[which]
	if !ok {
		return fmt.Errorf("unknown figure %q (want one of: all %s timeline churn)", which, strings.Join(order, " "))
	}
	return timed(which, f)
}

// figTime is one figure's wall-clock cost within a regeneration.
type figTime struct {
	name string
	wall time.Duration
}

// figWallTable renders per-figure wall clock and the engine the run
// executed on.
func figWallTable(engine busaware.EngineKind, times []figTime) *report.Table {
	t := report.NewTable(fmt.Sprintf("Per-figure wall clock (engine=%s)", engine),
		"Figure", "Wall")
	var total time.Duration
	for _, ft := range times {
		total += ft.wall
		t.AddRowf(ft.name, ft.wall.Round(time.Millisecond).String())
	}
	t.AddRowf("TOTAL", total.Round(time.Millisecond).String())
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// profileState tracks the pprof outputs so error paths can clean up.
// The previous shape hung profile completion off deferred closures
// that fatal()'s os.Exit skipped, leaving a truncated CPU profile (and
// no heap profile) exactly when a run failed.
type profileState struct {
	cpuFile *os.File
	cpuPath string
	memPath string
}

// startProfiles opens the CPU profile (if requested) and records the
// heap-profile destination for finish.
func startProfiles(cpuPath, memPath string) (*profileState, error) {
	p := &profileState{cpuPath: cpuPath, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(cpuPath)
			return nil, err
		}
		p.cpuFile = f
	}
	return p, nil
}

// finish completes both profiles. On failure it stops and deletes them
// — a partial profile is worse than none — and never masks the run's
// own error.
func (p *profileState) finish(failed bool) error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		if failed {
			os.Remove(p.cpuPath)
		} else if err != nil {
			first = err
		}
	}
	if p.memPath != "" && !failed {
		f, err := os.Create(p.memPath)
		if err != nil {
			return firstErr(first, err)
		}
		runtime.GC() // settle live heap so the profile reflects retained allocations
		werr := pprof.WriteHeapProfile(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			os.Remove(p.memPath)
			return firstErr(first, firstErr(werr, cerr))
		}
	}
	return first
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// runstatsTable renders the run-level metrics the parallel runner
// collected: one row per batch plus the sweep total.
func runstatsTable(m *busaware.RunMetrics) *report.Table {
	t := report.NewTable("Run-level metrics (parallel experiment runner)",
		"Batch", "Cells", "Workers", "Peak", "Wall", "CellWall", "Quanta", "SimTime", "BusUtil", "Speedup")
	for _, b := range m.Batches() {
		r := b.Report
		t.AddRowf(b.Name, fmt.Sprint(len(r.Cells)), fmt.Sprint(r.Workers),
			fmt.Sprint(r.PeakOccupancy),
			r.Wall.Round(time.Millisecond).String(),
			r.CellWall().Round(time.Millisecond).String(),
			fmt.Sprint(r.TotalQuanta()), r.TotalSimTime().String(),
			r.MeanBusUtilization(), r.Speedup())
	}
	tot := m.Total()
	t.AddRowf("TOTAL", fmt.Sprint(tot.Cells), fmt.Sprint(tot.Workers),
		fmt.Sprint(tot.PeakOccupancy),
		tot.Wall.Round(time.Millisecond).String(),
		tot.CellWall.Round(time.Millisecond).String(),
		fmt.Sprint(tot.Quanta), tot.SimTime.String(),
		tot.BusUtilization, tot.Speedup())
	return t
}

func calibration(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	cal, err := busaware.Calibrate(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Calibration (paper Section 3: STREAM on 4 processors)",
		"Quantity", "Simulated", "Paper")
	t.AddRowf("Sustained rate (trans/us)", float64(cal.SustainedRate), "29.5")
	t.AddRowf("Sustained bandwidth (MB/s)", cal.SustainedMBps, "1797")
	t.AddRowf("Bytes per transaction", fmt.Sprint(cal.BytesPerTransaction), "~64")
	t.AddRowf("Nominal peak (MB/s)", cal.PeakMBps, "3200")
	emit(t)
	return nil
}

func hitRates(emit func(*report.Table)) error {
	rows, err := busaware.MicrobenchmarkHitRates()
	if err != nil {
		return err
	}
	t := report.NewTable("Microbenchmark cache behaviour (derived via L2 simulator; paper: BBMA ~0%, nBBMA ~100%)",
		"Pattern", "Refs", "HitRate", "BusTrans/Ref")
	for _, r := range rows {
		t.AddRowf(r.Name, fmt.Sprint(r.Refs), fmt.Sprintf("%.4f", r.HitRate), fmt.Sprintf("%.4f", r.BusTransPerRef))
	}
	emit(t)
	return nil
}

func figure1(opt busaware.ExperimentOptions, emit func(*report.Table), panelA bool) error {
	rows, err := busaware.Figure1(opt)
	if err != nil {
		return err
	}
	if panelA {
		t := report.NewTable("Figure 1A: cumulative bus transactions/usec (black, dark gray, light gray, striped bars)",
			"App", "Solo", "2 Apps", "App+2BBMA", "App+2nBBMA")
		for _, r := range rows {
			t.AddRowf(r.App, float64(r.SoloRate), float64(r.TwoAppsRate),
				float64(r.WithBBMARate), float64(r.WithNBBMARate))
		}
		emit(t)
		return nil
	}
	t := report.NewTable("Figure 1B: slowdown vs solo execution",
		"App", "2 Apps", "App+2BBMA", "App+2nBBMA")
	for _, r := range rows {
		t.AddRowf(r.App, r.TwoAppsSlowdown, r.WithBBMASlowdown, r.WithNBBMASlowdown)
	}
	emit(t)
	return nil
}

func figure2(title string, rows []busaware.Fig2Row, err error, emit func(*report.Table)) error {
	return errFirst(err, func() error {
		t := report.NewTable(title,
			"App", "Linux(s)", "LQ(s)", "QW(s)", "LQ impr %", "QW impr %")
		for _, r := range rows {
			t.AddRowf(r.App,
				r.LinuxTurnaround.Seconds(), r.LQTurnaround.Seconds(), r.QWTurnaround.Seconds(),
				r.LQImprovement, r.QWImprovement)
		}
		emit(t)
		return nil
	})
}

func errFirst(err error, then func() error) error {
	if err != nil {
		return err
	}
	return then()
}

func windowAblation(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.AblateWindow(opt, nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Window-length ablation on Raytrace (paper picks W=5)",
		"W", "TrackDist", "EstStdDev", "Raytrace impr %")
	for _, r := range rows {
		t.AddRowf(fmt.Sprint(r.Window), fmt.Sprintf("%.3f", r.TrackingDistance),
			r.EstimateStdDev, r.RaytraceImprovement)
	}
	emit(t)
	return nil
}

func quantumAblation(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.AblateQuantum(opt, nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Quantum ablation on BT mixed set (paper settles on 200ms)",
		"Quantum", "CtxSw/s", "Migr/s", "Impr %")
	for _, r := range rows {
		t.AddRowf(r.Quantum.String(), r.ContextSwitchesPerSec, r.MigrationsPerSec, r.Improvement)
	}
	emit(t)
	return nil
}

func overhead(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	res, err := busaware.MeasureManagerOverhead(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("CPU-manager overhead, worst case (paper: <= 4.5%)",
		"Variant", "Mean turnaround", "Overhead %")
	t.AddRowf("unmanaged", res.BaselineTurnaround.String(), "-")
	t.AddRowf("managed", res.ManagedTurnaround.String(), res.OverheadPercent)
	emit(t)
	return nil
}

func zoo(opt busaware.ExperimentOptions, app string, emit func(*report.Table)) error {
	rows, err := busaware.CompareSchedulers(opt, app)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Scheduler comparison on %s + 2 BBMA + 2 nBBMA", app),
		"Scheduler", "Mean turnaround", "Impr vs Linux %")
	for _, r := range rows {
		t.AddRowf(r.Scheduler, r.MeanTurnaround.String(), r.ImprovementVsLinux)
	}
	emit(t)
	return nil
}

func robustness(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	res, err := busaware.MeasureRobustness(opt, 20, 1)
	if err != nil {
		return err
	}
	t := report.NewTable("Random-workload robustness (20 seeded mixes, improvement % over Linux)",
		"Policy", "Wins", "Mean", "Median", "Min", "Max")
	t.AddRowf("LatestQuantum", fmt.Sprintf("%d/%d", res.LQWins, res.Workloads),
		res.LQ.Mean, res.LQ.Median, res.LQ.Min, res.LQ.Max)
	t.AddRowf("QuantaWindow", fmt.Sprintf("%d/%d", res.QWWins, res.Workloads),
		res.QW.Mean, res.QW.Median, res.QW.Min, res.QW.Max)
	emit(t)
	return nil
}

func degradation(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	points, err := busaware.MeasureDegradation(opt, nil, 1)
	if err != nil {
		return err
	}
	t := report.NewTable("Fault-injection degradation sweep, BT mixed set (improvement % over clean Linux; stale fallback K=4)",
		"Fault class", "Rate", "LQ impr %", "QW impr %", "LQ faults", "QW faults")
	for _, p := range points {
		t.AddRowf(string(p.Class), fmt.Sprintf("%.0f%%", p.Rate*100),
			p.LQImprovement, p.QWImprovement,
			fmt.Sprint(p.LQFaults.Total()), fmt.Sprint(p.QWFaults.Total()))
	}
	emit(t)
	return nil
}

func servers(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.RunServerWorkloads(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Server workloads on the mixed set (paper future work, implemented)",
		"App", "Linux(s)", "LQ(s)", "QW(s)", "LQ impr %", "QW impr %")
	for _, r := range rows {
		t.AddRowf(r.App, r.LinuxTurnaround.Seconds(), r.LQTurnaround.Seconds(),
			r.QWTurnaround.Seconds(), r.LQImprovement, r.QWImprovement)
	}
	emit(t)
	return nil
}

func smt(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.RunSMTStudy(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Hyperthreading study: 4 CPUs vs 8 logical on 4 cores, BT mixed workload (per-work speedup)",
		"Policy", "SMT off", "SMT on (2x work)", "Speedup %")
	for _, r := range rows {
		t.AddRowf(r.Policy, r.SMTOff.String(), r.SMTOn.String(), r.SpeedupPercent)
	}
	emit(t)
	return nil
}

func churnFigure(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.RunChurnStudy(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Flash-crowd churn: BT pair under mid-run scenario arrivals (base-app turnaround)",
		"Policy", "Base turnaround", "Arrivals", "Departures", "Completed", "Impr vs Linux %")
	for _, r := range rows {
		t.AddRowf(r.Policy, r.BaseTurnaround.String(),
			fmt.Sprint(r.Arrivals), fmt.Sprint(r.Departures), fmt.Sprint(r.Completed),
			r.ImprovementVsLinux)
	}
	emit(t)
	return nil
}

func sampling(opt busaware.ExperimentOptions, emit func(*report.Table)) error {
	rows, err := busaware.AblateSampling(opt, nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Estimator-input ablation on the saturated set (QW improvement % over Linux)",
		"App", "Requirements", "Consumption", "SaturationGuard")
	for _, r := range rows {
		t.AddRowf(r.App, r.RequirementsImprovement, r.ConsumptionImprovement, r.GuardedImprovement)
	}
	emit(t)
	return nil
}
