// Command smpsimd serves the simulator over HTTP: POST /v1/simulate
// runs one workload cell (same grammar and defaults as the smpsim CLI)
// on a shared bounded worker pool, with an exact-key response cache,
// admission control (429 + Retry-After under overload), per-request
// deadlines, a live telemetry stream (GET /v1/timeline: every run's
// per-quantum windows as NDJSON while the run executes), /healthz,
// Prometheus /metrics and graceful drain on SIGTERM/SIGINT.
//
// With -store-dir the response cache gains a persistent tier: every
// computed body is also written to a content-addressed on-disk store
// (crash-safe, verified on read), so a restarted daemon replays its
// whole warm set instead of recomputing it. -store-shared-dir adds a
// fleet-wide tier all backends populate together.
//
// Usage:
//
//	smpsimd -addr :8080 -workers 4 -queue 64 -cache 256 \
//	  -store-dir /var/lib/smpsimd/store -store-max-bytes 1073741824
//
//	curl -s localhost:8080/v1/simulate \
//	  -d '{"apps":"CG x2, BBMA x4","policy":"window"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"busaware/internal/runner"
	"busaware/internal/server"
	"busaware/internal/sim"
	"busaware/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2x workers); beyond it requests get 429")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "response cache entries")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline (queue wait included)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	simDelay := flag.Duration("simdelay", 0, "artificial per-cell latency, standing in for expensive cells (overload/drain demos)")
	tlQuanta := flag.Int("timeline-window", 0, "telemetry window span in quanta (0 = 64); smaller spans stream /v1/timeline windows sooner")
	tlWindows := flag.Int("timeline-windows", 0, "per-run retained window ring size (0 = 256); older windows fold into the run summary")
	engineName := flag.String("engine", "", "simulation engine: quantum (stepped reference, default), event (leaps constant stretches), shadow (runs both, fails on divergence)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (tier 2; empty = memory-only caching)")
	storeShared := flag.String("store-shared-dir", "", "shared result store directory all backends populate (tier 3)")
	storeMax := flag.Int64("store-max-bytes", 0, "tier-2 store size bound in bytes, LRU-evicted (0 = unbounded)")
	flag.Parse()

	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}

	var st *store.Store
	if *storeDir != "" || *storeShared != "" {
		st, err = store.Open(store.Config{Dir: *storeDir, SharedDir: *storeShared, MaxBytes: *storeMax})
		if err != nil {
			fatal(err)
		}
		log.Printf("smpsimd: store open (dir=%q shared=%q max-bytes=%d entries=%d)",
			*storeDir, *storeShared, *storeMax, st.Stats().Disk.Entries)
	}

	s := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		RequestTimeout:  *timeout,
		RetryAfter:      *retryAfter,
		SimDelay:        *simDelay,
		TimelineQuanta:  *tlQuanta,
		TimelineWindows: *tlWindows,
		Engine:          engine,
		Store:           st,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	w := runner.Workers(*workers)
	q := *queue
	if q <= 0 {
		q = 2 * w
	}
	log.Printf("smpsimd: listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		*addr, w, q, *cacheSize, *timeout)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight requests finish
	// within the budget, then release the pool.
	log.Printf("smpsimd: draining (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("smpsimd: drain incomplete: %v", err)
	}
	s.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("smpsimd: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpsimd:", err)
	os.Exit(1)
}
