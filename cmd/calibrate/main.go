// Command calibrate reproduces the paper's machine calibration twice:
// once inside the simulator (the STREAM workload on the modelled bus,
// pinned to the paper's 29.5 trans/usec) and once natively on the host
// (real STREAM kernels over host memory), so a user can re-base the
// simulator's capacity constant on their own machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"busaware"
	"busaware/internal/mem"
	"busaware/internal/report"
)

func main() {
	elems := flag.Int("n", 1<<23, "native STREAM array elements (float64)")
	iters := flag.Int("iters", 5, "native STREAM iterations (best run reported)")
	skipNative := flag.Bool("sim-only", false, "skip the native host measurement")
	flag.Parse()

	cal, err := busaware.Calibrate(busaware.ExperimentOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	t := report.NewTable("Simulated calibration (paper machine)",
		"Quantity", "Simulated", "Paper")
	t.AddRowf("Sustained rate (trans/us)", float64(cal.SustainedRate), "29.5")
	t.AddRowf("Sustained bandwidth (MB/s)", cal.SustainedMBps, "1797")
	t.AddRowf("Bytes/transaction", fmt.Sprint(cal.BytesPerTransaction), "~64")
	fmt.Println(t.String())

	if *skipNative {
		return
	}
	n := report.NewTable("Native host STREAM (for re-basing the simulator on this machine)",
		"Kernel", "MB/s", "Equivalent trans/us")
	for _, k := range []mem.StreamKernel{mem.StreamCopy, mem.StreamScale, mem.StreamAdd, mem.StreamTriad} {
		res := mem.RunNative(k, *elems, *iters)
		n.AddRowf(k.String(), res.MBPerSec, float64(res.TransPerUs))
	}
	fmt.Println(n.String())
	fmt.Println("To re-base the simulator, set bus.Config.Capacity to the native Triad trans/us figure.")
}
