// Command smpgw fronts a fleet of smpsimd backends with a
// consistent-hash gateway: requests are sharded by the canonical
// request key (the same identity the backends' response caches use),
// so each backend's cache stays hot for its shard; unhealthy backends
// are ejected by /healthz probing and re-admitted when they recover;
// connection errors fail over to the next ring node; and backend 429s
// are retried after honoring Retry-After before being passed through.
//
// The forwarding path is chaos-hardened: each backend sits behind a
// circuit breaker (consecutive failures or a high windowed error rate
// open it; after a cooldown one trial request probes recovery), all
// retries and hedges draw from a global sliding-window retry budget
// (exhaustion fails fast with 503 and X-Retry-Budget: exhausted
// instead of amplifying load), slow attempts are hedged to another
// backend once the tracked p99 delay elapses, and every response body
// is integrity-checked against its X-Content-Digest before being
// forwarded — a corrupt body is retried like a connection error.
//
// Usage:
//
//	smpsimd -addr 127.0.0.1:8081 &
//	smpsimd -addr 127.0.0.1:8082 &
//	smpgw -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
//	curl -s localhost:8080/v1/simulate -d '{"apps":"CG x2, BBMA x4"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"busaware/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated smpsimd base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = 128)")
	probe := flag.Duration("probe", 2*time.Second, "backend /healthz probe interval")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	probeFailures := flag.Int("probe-failures", 2, "consecutive probe failures before ejection")
	retry429 := flag.Int("retry-429", 2, "times a backend 429 is retried (honoring Retry-After) before passing it through")
	maxRetryAfter := flag.Duration("max-retry-after", 5*time.Second, "cap on one honored Retry-After hint")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures tripping a backend's circuit breaker (0 = 5, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-state cooldown before a breaker probes with one trial request (0 = 2s)")
	retryBudget := flag.Float64("retry-budget", 0, "retries allowed per request over a sliding window (0 = 0.5, negative = unlimited)")
	retryBudgetFloor := flag.Int("retry-budget-floor", 0, "minimum retries always allowed per window regardless of volume (0 = 16)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-attempt upstream timeout, the hard bound on a blackholed backend (0 = 15s, negative = unbounded)")
	hedgeDelayMin := flag.Duration("hedge-delay-min", 0, "floor on the hedging delay; actual delay is max(floor, tracked p99) (0 = 250ms, negative = hedging off)")
	flag.Parse()

	var addrs []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			addrs = append(addrs, b)
		}
	}
	g, err := gateway.New(gateway.Config{
		Backends:      addrs,
		Replicas:      *replicas,
		ProbeInterval: *probe,
		ProbeTimeout:  *probeTimeout,
		ProbeFailures: *probeFailures,
		Retry429:      *retry429,
		MaxRetryAfter: *maxRetryAfter,

		BreakerFailures:  *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
		RetryBudgetRatio: *retryBudget,
		RetryBudgetFloor: *retryBudgetFloor,
		AttemptTimeout:   *attemptTimeout,
		HedgeDelayMin:    *hedgeDelayMin,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: g}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("smpgw: listening on %s over %d backends (probe=%s retry429=%d)",
		*addr, len(addrs), *probe, *retry429)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("smpgw: draining (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("smpgw: drain incomplete: %v", err)
	}
	g.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("smpgw: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpgw:", err)
	os.Exit(1)
}
