// Command smpsim runs an arbitrary multiprogrammed workload on the
// simulated SMP under a chosen scheduling policy and prints
// per-application turnarounds plus machine-wide statistics.
//
// Usage:
//
//	smpsim -policy window -apps "CG x2, BBMA x4"
//	smpsim -policy linux -seed 7 -apps "Raytrace x2, nBBMA x4" -v
//	smpsim -json -apps "CG x2, BBMA x4"     # smpsimd response schema
//	smpsim -engine shadow -apps "CG x2, BBMA x4"   # verify event vs quantum
//	smpsim -apps "Barnes" -scenario flashcrowd -scenario-seed 7 -v
//
// The -apps grammar is a comma-separated list of "<name> [xN]" items;
// names come from the registry (the eleven paper applications, BBMA,
// nBBMA, STREAM). The same grammar drives the smpsimd HTTP daemon, and
// -json emits the exact response schema of POST /v1/simulate (with
// -timeline additionally embedding the Chrome trace, the counterpart
// of the API's "trace":true), so CLI and server outputs are diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"busaware"
	"busaware/internal/report"
	"busaware/internal/server"
)

func main() {
	policy := flag.String("policy", busaware.PolicyQuantaWindow,
		fmt.Sprintf("scheduling policy: %s", strings.Join(busaware.Policies(), ", ")))
	appsSpec := flag.String("apps", "CG x2, BBMA x4", "workload: comma-separated '<name> [xN]' items")
	seed := flag.Int64("seed", 1, "seed for the Linux baseline's runqueue shuffling")
	engineName := flag.String("engine", "", "simulation engine: quantum (stepped reference, default), event (leaps constant stretches), shadow (runs both, fails on divergence)")
	cpus := flag.Int("cpus", 0, "override processor count (0 = paper machine's 4)")
	verbose := flag.Bool("v", false, "print machine-wide statistics")
	timeline := flag.Bool("timeline", false, "print an ASCII schedule timeline (with -json: embed the Chrome trace)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing)")
	jsonOut := flag.Bool("json", false, "emit the POST /v1/simulate response schema instead of tables")
	scenarioPat := flag.String("scenario", "", "churn scenario: load pattern or preset ("+strings.Join(busaware.LoadPatternPresets(), ", ")+") governing mid-run arrivals and departures")
	scenarioPool := flag.String("scenario-pool", "", "profile pool scenario arrivals draw from (default: the scenario package's pool)")
	scenarioSeed := flag.Int64("scenario-seed", 0, "seed for the scenario's pool draws")
	flag.Parse()

	apps, err := busaware.ParseApps(*appsSpec)
	if err != nil {
		fatal(err)
	}
	m := busaware.PaperMachine()
	if *cpus > 0 {
		m.NumCPUs = *cpus
	}
	engine, err := busaware.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	s, err := busaware.NewScheduler(*policy, m, *seed)
	if err != nil {
		fatal(err)
	}
	// Shadow's verification core replays with its own independent but
	// identically-configured scheduler.
	newSched := func() (busaware.Scheduler, error) {
		return busaware.NewScheduler(*policy, m, *seed)
	}
	var churn *busaware.ChurnSchedule
	if *scenarioPat != "" {
		churn, err = busaware.MaterializeChurn(busaware.ChurnSpec{
			Pattern: *scenarioPat, Pool: *scenarioPool, Seed: *scenarioSeed,
		})
		if err != nil {
			fatal(err)
		}
	} else if *scenarioPool != "" || *scenarioSeed != 0 {
		fatal(fmt.Errorf("-scenario-pool and -scenario-seed require -scenario"))
	}
	var res busaware.Result
	var tl *busaware.Timeline
	if *timeline || *traceOut != "" {
		res, tl, err = busaware.RunScenarioTraced(engine, m, s, newSched, apps, churn)
	} else {
		res, err = busaware.RunScenario(engine, m, s, newSched, apps, churn)
	}
	if err != nil {
		fatal(err)
	}
	if res.TimedOut {
		fmt.Fprintln(os.Stderr, "smpsim: warning: run hit the simulation time cap before completing")
	}

	if *jsonOut {
		// The embedded trace mirrors the HTTP API's "trace" field: only
		// -timeline opts in; a -trace file is still written separately.
		var embed *busaware.Timeline
		if *timeline {
			embed = tl
		}
		resp, err := server.NewResponse(res, embed, nil)
		if err != nil {
			fatal(err)
		}
		body, err := resp.MarshalBody()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
	} else {
		t := report.NewTable(fmt.Sprintf("Workload under %s", res.Scheduler),
			"Instance", "Profile", "Turnaround", "Slowdown", "MeanRate(trans/us)")
		for _, a := range res.Apps {
			t.AddRowf(a.Instance, a.Profile, a.Turnaround.String(),
				a.Slowdown, float64(a.MeanBusRate))
		}
		fmt.Println(t.String())

		if tl != nil && *timeline {
			fmt.Println(tl.Text())
		}
	}
	if tl != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("chrome trace written to %s\n", *traceOut)
		}
	}
	if *verbose && !*jsonOut {
		v := report.NewTable("Machine statistics", "Metric", "Value")
		v.AddRowf("Simulated time", res.EndTime.String())
		v.AddRowf("Quanta", fmt.Sprint(res.Quanta))
		v.AddRowf("Migrations", fmt.Sprint(res.Migrations))
		v.AddRowf("Context switches", fmt.Sprint(res.ContextSwitches))
		v.AddRowf("Mean bus utilization", res.MeanBusUtilization)
		v.AddRowf("Mean turnaround", res.MeanTurnaround().String())
		if churn != nil {
			v.AddRowf("Scenario arrivals", fmt.Sprint(res.ScenarioArrivals))
			v.AddRowf("Scenario departures", fmt.Sprint(res.ScenarioDepartures))
			v.AddRowf("Scenario completed", fmt.Sprint(res.ScenarioCompleted))
		}
		fmt.Println(v.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpsim:", err)
	os.Exit(1)
}
