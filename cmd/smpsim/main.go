// Command smpsim runs an arbitrary multiprogrammed workload on the
// simulated SMP under a chosen scheduling policy and prints
// per-application turnarounds plus machine-wide statistics.
//
// Usage:
//
//	smpsim -policy window -apps "CG x2, BBMA x4"
//	smpsim -policy linux -seed 7 -apps "Raytrace x2, nBBMA x4" -v
//
// The -apps grammar is a comma-separated list of "<name> [xN]" items;
// names come from the registry (the eleven paper applications, BBMA,
// nBBMA, STREAM).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"busaware"
	"busaware/internal/report"
)

func main() {
	policy := flag.String("policy", busaware.PolicyQuantaWindow,
		fmt.Sprintf("scheduling policy: %s", strings.Join(busaware.Policies(), ", ")))
	appsSpec := flag.String("apps", "CG x2, BBMA x4", "workload: comma-separated '<name> [xN]' items")
	seed := flag.Int64("seed", 1, "seed for the Linux baseline's runqueue shuffling")
	cpus := flag.Int("cpus", 0, "override processor count (0 = paper machine's 4)")
	verbose := flag.Bool("v", false, "print machine-wide statistics")
	timeline := flag.Bool("timeline", false, "print an ASCII schedule timeline")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing)")
	flag.Parse()

	apps, err := parseApps(*appsSpec)
	if err != nil {
		fatal(err)
	}
	m := busaware.PaperMachine()
	if *cpus > 0 {
		m.NumCPUs = *cpus
	}
	s, err := busaware.NewScheduler(*policy, m, *seed)
	if err != nil {
		fatal(err)
	}
	var res busaware.Result
	var tl *busaware.Timeline
	if *timeline || *traceOut != "" {
		res, tl, err = busaware.RunTraced(m, s, apps)
	} else {
		res, err = busaware.Run(m, s, apps)
	}
	if err != nil {
		fatal(err)
	}
	if res.TimedOut {
		fmt.Fprintln(os.Stderr, "smpsim: warning: run hit the simulation time cap before completing")
	}

	t := report.NewTable(fmt.Sprintf("Workload under %s", res.Scheduler),
		"Instance", "Profile", "Turnaround", "Slowdown", "MeanRate(trans/us)")
	for _, a := range res.Apps {
		t.AddRowf(a.Instance, a.Profile, a.Turnaround.String(),
			a.Slowdown, float64(a.MeanBusRate))
	}
	fmt.Println(t.String())

	if tl != nil && *timeline {
		fmt.Println(tl.Text())
	}
	if tl != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s\n", *traceOut)
	}
	if *verbose {
		v := report.NewTable("Machine statistics", "Metric", "Value")
		v.AddRowf("Simulated time", res.EndTime.String())
		v.AddRowf("Quanta", fmt.Sprint(res.Quanta))
		v.AddRowf("Migrations", fmt.Sprint(res.Migrations))
		v.AddRowf("Context switches", fmt.Sprint(res.ContextSwitches))
		v.AddRowf("Mean bus utilization", res.MeanBusUtilization)
		v.AddRowf("Mean turnaround", res.MeanTurnaround().String())
		fmt.Println(v.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smpsim:", err)
	os.Exit(1)
}

// parseApps expands "CG x2, BBMA x4" into application instances.
func parseApps(spec string) ([]*busaware.App, error) {
	var apps []*busaware.App
	counts := map[string]int{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name := item
		n := 1
		if i := strings.LastIndex(item, " x"); i >= 0 {
			parsed, err := strconv.Atoi(strings.TrimSpace(item[i+2:]))
			if err != nil || parsed < 1 {
				return nil, fmt.Errorf("bad multiplicity in %q", item)
			}
			name = strings.TrimSpace(item[:i])
			n = parsed
		}
		p, ok := busaware.AppByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown application %q", name)
		}
		for i := 0; i < n; i++ {
			counts[name]++
			apps = append(apps, busaware.NewInstance(p, fmt.Sprintf("%s#%d", name, counts[name])))
		}
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("empty workload %q", spec)
	}
	return apps, nil
}
