package busaware

import (
	"strings"
	"testing"
)

func TestApplicationsRegistry(t *testing.T) {
	apps := Applications()
	if len(apps) != 11 {
		t.Fatalf("applications = %d, want 11", len(apps))
	}
	if apps[0].Name != "Radiosity" || apps[10].Name != "CG" {
		t.Errorf("ordering endpoints: %s .. %s", apps[0].Name, apps[10].Name)
	}
	if _, ok := AppByName("BBMA"); !ok {
		t.Error("BBMA missing")
	}
	if _, ok := AppByName("nope"); ok {
		t.Error("unknown app resolved")
	}
}

func TestNewSchedulerNames(t *testing.T) {
	m := PaperMachine()
	for _, name := range Policies() {
		s, err := NewScheduler(name, m, 7)
		if err != nil {
			t.Errorf("policy %q: %v", name, err)
			continue
		}
		if s.Quantum() <= 0 {
			t.Errorf("policy %q has no quantum", name)
		}
	}
	if _, err := NewScheduler("bogus", m, 0); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestRunPolicyEndToEnd(t *testing.T) {
	cg, ok := AppByName("CG")
	if !ok {
		t.Fatal("CG missing")
	}
	apps := Instances(cg, 1)
	res, err := RunPolicy(PolicyQuantaWindow, apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || len(res.Apps) != 1 || res.Apps[0].Turnaround <= 0 {
		t.Errorf("unexpected result: %+v", res)
	}
	if _, err := RunPolicy("bogus", apps); err == nil {
		t.Error("bogus policy accepted by RunPolicy")
	}
}

func TestPoliciesBeatLinuxHeadline(t *testing.T) {
	// The repository's headline claim, via the public API: on the
	// paper's saturated workload the bandwidth-aware policies beat the
	// Linux baseline.
	cg, _ := AppByName("CG")
	bbma, _ := AppByName("BBMA")
	build := func() []*App {
		apps := Instances(cg, 2)
		return append(apps, Instances(bbma, 4)...)
	}
	linux, err := RunPolicy(PolicyLinux, build())
	if err != nil {
		t.Fatal(err)
	}
	window, err := RunPolicy(PolicyQuantaWindow, build())
	if err != nil {
		t.Fatal(err)
	}
	if window.MeanTurnaround() >= linux.MeanTurnaround() {
		t.Errorf("QuantaWindow %v should beat Linux %v", window.MeanTurnaround(), linux.MeanTurnaround())
	}
}

func TestFacadeFigureWrappers(t *testing.T) {
	// Exercise the cheap figure wrappers through the public API; the
	// expensive panels are covered by internal/experiments tests and
	// the benchmarks.
	if _, err := Calibrate(ExperimentOptions{}); err != nil {
		t.Error(err)
	}
	if rows, err := MicrobenchmarkHitRates(); err != nil || len(rows) == 0 {
		t.Errorf("hit rates: %v, %d rows", err, len(rows))
	}
	if rows, err := AblateWindow(ExperimentOptions{LinuxSeeds: []int64{1}}, []int{1, 5}); err != nil || len(rows) != 2 {
		t.Errorf("window ablation: %v", err)
	}
	if rows, err := AblateQuantum(ExperimentOptions{LinuxSeeds: []int64{1}},
		[]Time{100 * Millisecond}); err != nil || len(rows) != 1 {
		t.Errorf("quantum ablation: %v", err)
	}
	if res, err := MeasureManagerOverhead(ExperimentOptions{}); err != nil || res.BaselineTurnaround <= 0 {
		t.Errorf("overhead: %v", err)
	}
	if rows, err := RunServerWorkloads(ExperimentOptions{LinuxSeeds: []int64{1}}); err != nil || len(rows) != 2 {
		t.Errorf("servers: %v", err)
	}
	if rows, err := RunSMTStudy(ExperimentOptions{LinuxSeeds: []int64{1}}); err != nil || len(rows) != 2 {
		t.Errorf("smt: %v", err)
	}
	if res, err := MeasureRobustness(ExperimentOptions{LinuxSeeds: []int64{1}}, 3, 7); err != nil || res.Workloads != 3 {
		t.Errorf("robustness: %v", err)
	}
	if rows, err := AblateSampling(ExperimentOptions{LinuxSeeds: []int64{1}}, []string{"Radiosity"}); err != nil || len(rows) != 1 {
		t.Errorf("sampling: %v", err)
	}
	if rows, err := CompareSchedulers(ExperimentOptions{LinuxSeeds: []int64{1}}, "Volrend"); err != nil || len(rows) < 7 {
		t.Errorf("zoo: %v", err)
	}
}

func TestFacadeFigure2Panels(t *testing.T) {
	if testing.Short() {
		t.Skip("panel sweep in short mode")
	}
	opt := ExperimentOptions{LinuxSeeds: []int64{1}}
	a, err := Figure2A(opt)
	if err != nil || len(a) != 11 {
		t.Fatalf("2A: %v", err)
	}
	s := SummarizeFigure2(SetBBMA, a)
	if s.QWMean <= 0 {
		t.Errorf("2A QW mean = %.1f", s.QWMean)
	}
	if _, err := Figure2B(opt); err != nil {
		t.Error(err)
	}
	if _, err := Figure2C(opt); err != nil {
		t.Error(err)
	}
	if rows, err := Figure1(opt); err != nil || len(rows) != 11 {
		t.Errorf("fig1: %v", err)
	}
}

func TestRunTraced(t *testing.T) {
	vol, _ := AppByName("Volrend")
	m := PaperMachine()
	s, err := NewScheduler(PolicyGang, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, tl, err := RunTraced(m, s, Instances(vol, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 || res.Quanta == 0 {
		t.Error("traced run recorded nothing")
	}
	if !strings.Contains(tl.Text(), "cpu0") {
		t.Error("timeline text malformed")
	}
}
