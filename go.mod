module busaware

go 1.22
