package busaware

import (
	"busaware/internal/experiments"
	"busaware/internal/faults"
	"busaware/internal/runner"
	"busaware/internal/units"
)

// Re-exported experiment types; see internal/experiments for the
// field-level documentation.
type (
	// ExperimentOptions configures a figure run (machine, Linux seeds,
	// sampling mode).
	ExperimentOptions = experiments.Options
	// Fig1Row is one application's bars in Figure 1 (rates and
	// slowdowns across the four Section 3 configurations).
	Fig1Row = experiments.Fig1Row
	// Fig2Row is one application's bars in a Figure 2 panel
	// (turnaround improvement of each policy over Linux).
	Fig2Row = experiments.Fig2Row
	// Fig2Summary aggregates a Figure 2 panel.
	Fig2Summary = experiments.Fig2Summary
	// CalibrationResult pins the simulator against the paper's STREAM
	// measurements.
	CalibrationResult = experiments.CalibrationResult
	// HitRateResult derives a microbenchmark's cache behaviour from
	// its address pattern.
	HitRateResult = experiments.HitRateResult
	// WindowAblationRow sweeps the Quanta Window length.
	WindowAblationRow = experiments.WindowAblationRow
	// QuantumAblationRow sweeps the manager quantum.
	QuantumAblationRow = experiments.QuantumAblationRow
	// OverheadResult measures the CPU manager's cost.
	OverheadResult = experiments.OverheadResult
	// ZooRow compares every scheduler on one workload.
	ZooRow = experiments.ZooRow
	// SamplingAblationRow contrasts estimator inputs.
	SamplingAblationRow = experiments.SamplingAblationRow
	// RobustnessResult summarizes random-workload sweeps.
	RobustnessResult = experiments.RobustnessResult
	// DegradationPoint is one cell of the fault-injection sweep: both
	// policies' improvement over clean Linux with one fault class at
	// one rate.
	DegradationPoint = experiments.DegradationPoint
	// DegradationFaultClass names an injectable failure mode.
	DegradationFaultClass = experiments.FaultClass
	// FaultConfig sets seeded fault-injection rates for a run; the zero
	// value is inert.
	FaultConfig = faults.Config
	// FaultStats reports what an injector actually did during a run.
	FaultStats = faults.Stats
	// ServerRow is a server-class application's outcome (extension).
	ServerRow = experiments.ServerRow
	// SMTRow compares hyperthreading off/on under one policy
	// (extension).
	SMTRow = experiments.SMTRow
	// ChurnRow is one policy's outcome under the flash-crowd churn
	// scenario (extension).
	ChurnRow = experiments.ChurnRow
)

// Run-level metrics types of the parallel experiment runner; see
// internal/runner for the field-level documentation.
type (
	// RunMetrics accumulates per-batch runner reports across a sweep.
	// Set ExperimentOptions.Metrics to one to collect; read it back
	// with Batches and Total.
	RunMetrics = runner.Metrics
	// RunBatch is one named batch report observed by a RunMetrics.
	RunBatch = runner.Batch
	// RunReport is the run-level observability of one batch: per-cell
	// wall time, simulated quanta, bus utilization and worker
	// occupancy.
	RunReport = runner.Report
	// RunTotal aggregates every observed batch of a sweep.
	RunTotal = runner.Total
)

// NewRunMetrics returns an empty run-level metrics accumulator.
func NewRunMetrics() *RunMetrics { return runner.NewMetrics() }

// Workload sets of the paper's Section 5 (Figure 2 panels).
const (
	SetBBMA  = experiments.SetBBMA
	SetNBBMA = experiments.SetNBBMA
	SetMixed = experiments.SetMixed
)

// Figure1 regenerates both panels of the paper's Figure 1: cumulative
// bus transaction rates and slowdowns of the eleven applications under
// the four Section 3 configurations.
func Figure1(opt ExperimentOptions) ([]Fig1Row, error) {
	return experiments.Figure1(opt)
}

// Figure2A regenerates Figure 2A: turnaround improvement over Linux
// with two application instances and four BBMA antagonists.
func Figure2A(opt ExperimentOptions) ([]Fig2Row, error) {
	return experiments.Figure2(experiments.SetBBMA, opt)
}

// Figure2B regenerates Figure 2B: two instances + four nBBMA.
func Figure2B(opt ExperimentOptions) ([]Fig2Row, error) {
	return experiments.Figure2(experiments.SetNBBMA, opt)
}

// Figure2C regenerates Figure 2C: two instances + 2 BBMA + 2 nBBMA.
func Figure2C(opt ExperimentOptions) ([]Fig2Row, error) {
	return experiments.Figure2(experiments.SetMixed, opt)
}

// SummarizeFigure2 aggregates a panel (mean/min/max improvements).
func SummarizeFigure2(set experiments.WorkloadSet, rows []Fig2Row) Fig2Summary {
	return experiments.Summarize(set, rows)
}

// Calibrate reproduces the paper's STREAM calibration table.
func Calibrate(opt ExperimentOptions) (CalibrationResult, error) {
	return experiments.Calibrate(opt)
}

// MicrobenchmarkHitRates derives the BBMA/nBBMA cache hit rates from
// first principles through the L2 simulator.
func MicrobenchmarkHitRates() ([]HitRateResult, error) {
	return experiments.HitRates()
}

// AblateWindow sweeps the Quanta Window length (paper: W = 5).
func AblateWindow(opt ExperimentOptions, windows []int) ([]WindowAblationRow, error) {
	return experiments.WindowAblation(opt, windows)
}

// AblateQuantum sweeps the CPU-manager quantum (paper: 200 ms).
func AblateQuantum(opt ExperimentOptions, quanta []units.Time) ([]QuantumAblationRow, error) {
	return experiments.QuantumAblation(opt, quanta)
}

// MeasureManagerOverhead reproduces the paper's worst-case manager
// overhead measurement (<= 4.5%).
func MeasureManagerOverhead(opt ExperimentOptions) (OverheadResult, error) {
	return experiments.ManagerOverhead(opt, 0)
}

// CompareSchedulers runs the full scheduler lineup on the mixed set.
func CompareSchedulers(opt ExperimentOptions, appName string) ([]ZooRow, error) {
	return experiments.SchedulerZoo(opt, appName)
}

// AblateSampling contrasts requirement-corrected sampling, raw
// consumption sampling, and guard-free selection.
func AblateSampling(opt ExperimentOptions, apps []string) ([]SamplingAblationRow, error) {
	return experiments.SamplingAblation(opt, apps)
}

// MeasureRobustness sweeps n randomly generated workloads (seeded,
// deterministic) and summarizes both policies' improvement over Linux
// — the generalization check beyond the paper's hand-picked mixes.
func MeasureRobustness(opt ExperimentOptions, n int, seed int64) (RobustnessResult, error) {
	return experiments.Robustness(opt, n, seed)
}

// MeasureDegradation sweeps seeded fault injection (sample loss,
// signal loss, client crashes) over the mixed workload and reports how
// much of each policy's improvement over clean Linux survives. Nil
// rates selects the default 0/10/30/50% grid.
func MeasureDegradation(opt ExperimentOptions, rates []float64, seed int64) ([]DegradationPoint, error) {
	return experiments.Degradation(opt, rates, seed)
}

// RunServerWorkloads evaluates the web-server and database profiles —
// the paper's "I/O and network-intensive workloads" future work.
func RunServerWorkloads(opt ExperimentOptions) ([]ServerRow, error) {
	return experiments.ServerWorkloads(opt)
}

// RunSMTStudy measures hyperthreading off vs on under Linux and
// Quanta Window — the paper's "multithreading processors" future work.
func RunSMTStudy(opt ExperimentOptions) ([]SMTRow, error) {
	return experiments.SMTStudy(opt)
}

// RunChurnStudy subjects each policy to the same mid-run flash crowd
// (scenario churn over a resident BT pair) and reports how well the
// base apps' turnaround was protected. See experiments.ChurnPattern.
func RunChurnStudy(opt ExperimentOptions) ([]ChurnRow, error) {
	return experiments.ChurnStudy(opt)
}
